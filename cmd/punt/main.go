// Command punt synthesises a speed-independent circuit from an STG
// specification (.g file) using the unfolding-based method of the paper: the
// STG-unfolding segment is built, partitioned into slices, and approximated
// covers are derived and refined for every output signal.
//
// Usage:
//
//	punt [-engine unfolding|explicit|symbolic|decompose|portfolio] [-exact]
//	     [-arch complex-gate|standard-c|rs-latch] [-verilog] [-stats]
//	     [-verify] [-cache] [-resolve-csc] [-max-csc-signals N]
//	     [-deadline D] [-mem-budget BYTES] [-fallback] [-server URL]
//	     file.g [file2.g ...]
//
// With "-" as a file name the STG is read from standard input.
//
// With -engine the synthesis backend is selected: the default unfolding flow,
// one of the state-graph baselines, the compositional decompose backend that
// splits the STG into independent components and synthesizes them in
// parallel, or the portfolio scheduler that races the monolithic engines and
// keeps the first success.  An unknown engine (or architecture) name is a
// usage error and exits with status 2.  A specification the decompose engine
// cannot split falls through to the inner engine unchanged.
//
// With -resolve-csc a specification rejected for a Complete State Coding
// conflict is repaired automatically: internal state signals (csc0, csc1, …)
// are inserted until CSC holds (at most -max-csc-signals of them), the
// repaired specification is synthesised instead, and the result is checked by
// the closed-loop verifier against the repaired specification.  The insertion
// summary is reported on standard error.
//
// With -cache a content-addressed result cache is shared across the given
// files, so repeated specifications are synthesised once ( -stats marks the
// reused results with cached=true).
//
// With -verify the synthesised implementation is additionally checked by the
// closed-loop gate-level simulation (conformance, hazard-freedom, liveness);
// a failed or inconclusive verification exits with status 3, distinct from
// the synthesis-failure status 1 and the usage status 2.
//
// With -server the synthesis runs on a puntd daemon instead of in-process:
// each specification is submitted to URL/v1/synthesize with the same
// configuration the local flags would apply, and the response — the result
// document or a structured error — is rendered exactly like a local run,
// preserving the exit-code contract (1 synthesis failure, 2 usage, 3 failed
// verification, 4 budget exhaustion).  -verify is evaluated by the daemon;
// -cache is ignored, since the daemon maintains the shared result store.
//
// With -deadline (a duration, e.g. 500ms) and -mem-budget (bytes) each
// synthesis attempt runs under a resource watchdog; an attempt that exhausts
// its budget exits with status 4 — distinct from every other failure — and
// the budget diagnostic (elapsed time, partial segment/state-space size) is
// printed on standard error.  With -fallback a budget- or limit-exhausted
// synthesis is retried through a built-in degradation ladder (approximate
// mode, then the unfolding engine with a reduced segment bound); a degraded
// result still exits 0 and the attempt breakdown is reported on standard
// error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"punt"
	"punt/gates"
	"punt/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it drives the whole command through the
// public punt facade and returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("punt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	engineName := fs.String("engine", "unfolding", "synthesis engine: unfolding, explicit, symbolic, decompose or portfolio")
	exact := fs.Bool("exact", false, "derive exact covers by slice enumeration instead of approximation")
	archName := fs.String("arch", "complex-gate", "implementation architecture: complex-gate, standard-c or rs-latch")
	verilog := fs.Bool("verilog", false, "emit a behavioural Verilog module instead of boolean equations")
	stats := fs.Bool("stats", false, "print the synthesis time breakdown (UnfTim/SynTim/EspTim)")
	maxEvents := fs.Int("max-events", 0, "abort if the unfolding segment exceeds this many events (0 = default)")
	doVerify := fs.Bool("verify", false, "verify the implementation with the closed-loop simulation; exit 3 on failure")
	maxStates := fs.Int("max-states", 0, "abort verification beyond this many composed states per cluster (0 = default)")
	useCache := fs.Bool("cache", false, "share a content-addressed result cache across the given files")
	resolveCSC := fs.Bool("resolve-csc", false, "repair CSC conflicts by inserting internal state signals")
	maxCSCSignals := fs.Int("max-csc-signals", 0, "bound on inserted CSC signals with -resolve-csc (0 = default)")
	deadline := fs.Duration("deadline", 0, "per-attempt wall-clock budget (0 = none); exhaustion exits with status 4")
	memBudget := fs.Int64("mem-budget", 0, "per-attempt heap-growth budget in bytes (0 = none); exhaustion exits with status 4")
	fallback := fs.Bool("fallback", false, "degrade through cheaper configurations when a resource budget is exhausted")
	serverURL := fs.String("server", "", "synthesize on a puntd daemon at this base URL instead of in-process")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() < 1 {
		return usage(fs, stderr, nil)
	}

	// Bad -engine and -arch values are usage errors (exit 2), symmetric with
	// unknown flags: ParseEngine and ParseArchitecture both reject instead of
	// silently defaulting.
	engine, err := punt.ParseEngine(*engineName)
	if err != nil {
		return usage(fs, stderr, err)
	}
	arch, err := gates.ParseArchitecture(*archName)
	if err != nil {
		return usage(fs, stderr, err)
	}

	opts := []punt.Option{
		punt.WithEngine(engine),
		punt.WithArch(arch),
		punt.WithMaxEvents(*maxEvents),
	}
	if *exact {
		opts = append(opts, punt.WithMode(punt.Exact))
	}
	if *useCache {
		opts = append(opts, punt.WithCache(punt.NewLRU(0)))
	}
	if *resolveCSC {
		opts = append(opts, punt.WithResolveCSC(*maxCSCSignals))
	}
	if *deadline > 0 {
		opts = append(opts, punt.WithDeadline(*deadline))
	}
	if *memBudget > 0 {
		opts = append(opts, punt.WithMemoryBudget(*memBudget))
	}
	if *fallback {
		// The built-in ladder: first retry with the cheap approximate covers,
		// then fall back to the unfolding engine with a tight segment bound —
		// the paper's own degradation strategy (a truncated segment in place
		// of the full state space).
		opts = append(opts, punt.WithFallback(
			punt.Fallback("approximate", punt.WithMode(punt.Approximate)),
			punt.Fallback("unfolding-small", punt.WithEngine(punt.Unfolding), punt.WithMaxEvents(10000)),
		))
	}
	synth := punt.New(opts...)

	for _, path := range fs.Args() {
		spec, err := punt.LoadFileFrom(path, stdin)
		if err != nil {
			return fail(stderr, err)
		}
		var res *punt.Result
		if *serverURL != "" {
			req := server.Request{
				Spec:          spec.Text(),
				Engine:        *engineName,
				Arch:          *archName,
				Exact:         *exact,
				MaxEvents:     *maxEvents,
				MaxStates:     *maxStates,
				ResolveCSC:    *resolveCSC,
				MaxCSCSignals: *maxCSCSignals,
				DeadlineMS:    deadline.Milliseconds(),
				MemBudget:     *memBudget,
				Fallback:      *fallback,
				Verify:        *doVerify,
			}
			var code int
			res, code, err = remoteSynthesize(*serverURL, req)
			if err != nil {
				fmt.Fprintln(stderr, "punt:", err)
				return code
			}
		} else {
			res, err = synth.Synthesize(context.Background(), spec)
			if err != nil {
				if errors.Is(err, punt.ErrBudget) {
					// Exit 4: the resource budget ran out, as opposed to a
					// property of the specification (1).  The diagnostic
					// carries the attempt's partial progress.
					fmt.Fprintln(stderr, "punt:", err)
					return 4
				}
				return fail(stderr, err)
			}
		}
		if *stats {
			fmt.Fprintf(stderr, "%s\n", &res.Stats)
		}
		if res.Degraded() {
			fmt.Fprintf(stderr, "punt: %s: degraded to fallback step %q after exhausting the primary configuration\n",
				res.Spec.Name(), res.Degradation.Signal)
			for _, line := range res.Degradation.Trace {
				fmt.Fprintf(stderr, "punt:   %s\n", line)
			}
		}
		if res.Resolved() {
			fmt.Fprintf(stderr, "punt: %s: resolved CSC by inserting %s\n", res.Spec.Name(), res.Resolution.Signal)
			for _, line := range res.Resolution.Trace {
				fmt.Fprintf(stderr, "punt:   %s\n", line)
			}
		}
		// A cached result was already verified when it entered the cache
		// earlier in this invocation (the cache is per-run, so every entry
		// went through this same loop), and a resolver-repaired result was
		// already closed-loop-verified against the repaired specification
		// inside Synthesize: skip the expensive re-verification of an
		// identical implementation in both cases.
		if *doVerify && *serverURL == "" && !res.Stats.Cached && !res.Resolved() {
			rep, err := punt.Verify(context.Background(), res.Spec, res, punt.WithMaxStates(*maxStates))
			if err != nil {
				// Exit 3: the implementation failed (or could not complete)
				// verification, as opposed to synthesis failure (1).
				fmt.Fprintln(stderr, "punt:", err)
				return 3
			}
			if *stats {
				fmt.Fprintf(stderr, "%s\n", rep)
			}
		}
		out := res.Eqn()
		if *verilog {
			out = res.Verilog()
		}
		// The netlist on stdout is the product of the run: a failing write
		// (closed pipe, full disk) must fail the command, not truncate the
		// circuit silently under exit 0.
		if _, err := io.WriteString(stdout, out); err != nil {
			fmt.Fprintln(stderr, "punt: writing output:", err)
			return 1
		}
	}
	return 0
}

// remoteSynthesize submits one specification to a puntd daemon and adapts
// the response to the local command's contract: a 200 yields the decoded
// Result, anything else yields the server-reported exit code — the same
// code a local run of the failing configuration would have returned.
func remoteSynthesize(baseURL string, req server.Request) (*punt.Result, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 1, err
	}
	url := strings.TrimRight(baseURL, "/") + "/v1/synthesize"
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 1, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 1, err
	}
	if resp.StatusCode == http.StatusOK {
		res, err := punt.DecodeResult(bytes.TrimSpace(data))
		if err != nil {
			return nil, 1, fmt.Errorf("decoding server result: %w", err)
		}
		return res, 0, nil
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(data, &eb); err == nil && eb.ExitCode != 0 {
		msg := eb.Error
		if eb.RetryAfter > 0 {
			msg = fmt.Sprintf("%s (retry after %ds)", msg, eb.RetryAfter)
		}
		return nil, eb.ExitCode, errors.New(msg)
	}
	return nil, 1, fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(data))
}

func usage(fs *flag.FlagSet, stderr io.Writer, err error) int {
	if err != nil {
		fmt.Fprintln(stderr, "punt:", err)
	}
	fmt.Fprintln(stderr, "usage: punt [flags] file.g [file2.g ...]")
	fs.PrintDefaults()
	return 2
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "punt:", err)
	return 1
}
