// Command punt synthesises a speed-independent circuit from an STG
// specification (.g file) using the unfolding-based method of the paper: the
// STG-unfolding segment is built, partitioned into slices, and approximated
// covers are derived and refined for every output signal.
//
// Usage:
//
//	punt [-exact] [-arch complex-gate|standard-c|rs-latch] [-verilog] [-stats] file.g
//
// With "-" as the file name the STG is read from standard input.
package main

import (
	"flag"
	"fmt"
	"os"

	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stg"
)

func main() {
	exact := flag.Bool("exact", false, "derive exact covers by slice enumeration instead of approximation")
	archName := flag.String("arch", "complex-gate", "implementation architecture: complex-gate, standard-c or rs-latch")
	verilog := flag.Bool("verilog", false, "emit a behavioural Verilog module instead of boolean equations")
	stats := flag.Bool("stats", false, "print the synthesis time breakdown (UnfTim/SynTim/EspTim)")
	maxEvents := flag.Int("max-events", 0, "abort if the unfolding segment exceeds this many events (0 = default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: punt [flags] file.g")
		flag.PrintDefaults()
		os.Exit(2)
	}

	g, err := readSTG(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var arch gatelib.Architecture
	switch *archName {
	case "complex-gate":
		arch = gatelib.ComplexGate
	case "standard-c":
		arch = gatelib.StandardC
	case "rs-latch":
		arch = gatelib.RSLatch
	default:
		fail(fmt.Errorf("unknown architecture %q", *archName))
	}
	mode := core.Approximate
	if *exact {
		mode = core.Exact
	}
	im, st, err := core.New(core.Options{Mode: mode, Arch: arch, MaxEvents: *maxEvents}).Synthesize(g)
	if err != nil {
		fail(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%s\n", st)
	}
	if *verilog {
		fmt.Print(im.Verilog())
	} else {
		fmt.Print(im.Eqn())
	}
}

func readSTG(path string) (*stg.STG, error) {
	if path == "-" {
		return stg.Parse(os.Stdin)
	}
	return stg.ParseFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "punt:", err)
	os.Exit(1)
}
