// Command punt synthesises a speed-independent circuit from an STG
// specification (.g file) using the unfolding-based method of the paper: the
// STG-unfolding segment is built, partitioned into slices, and approximated
// covers are derived and refined for every output signal.
//
// Usage:
//
//	punt [-exact] [-arch complex-gate|standard-c|rs-latch] [-verilog] [-stats] [-verify] file.g
//
// With "-" as the file name the STG is read from standard input.
//
// With -verify the synthesised implementation is additionally checked by the
// closed-loop gate-level simulation (conformance, hazard-freedom, liveness);
// a failed or inconclusive verification exits with status 3, distinct from
// the synthesis-failure status 1 and the usage status 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"punt"
	"punt/gates"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it drives the whole command through the
// public punt facade and returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("punt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exact := fs.Bool("exact", false, "derive exact covers by slice enumeration instead of approximation")
	archName := fs.String("arch", "complex-gate", "implementation architecture: complex-gate, standard-c or rs-latch")
	verilog := fs.Bool("verilog", false, "emit a behavioural Verilog module instead of boolean equations")
	stats := fs.Bool("stats", false, "print the synthesis time breakdown (UnfTim/SynTim/EspTim)")
	maxEvents := fs.Int("max-events", 0, "abort if the unfolding segment exceeds this many events (0 = default)")
	doVerify := fs.Bool("verify", false, "verify the implementation with the closed-loop simulation; exit 3 on failure")
	maxStates := fs.Int("max-states", 0, "abort verification beyond this many composed states per cluster (0 = default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: punt [flags] file.g")
		fs.PrintDefaults()
		return 2
	}

	arch, err := gates.ParseArchitecture(*archName)
	if err != nil {
		return fail(stderr, err)
	}
	spec, err := punt.LoadFileFrom(fs.Arg(0), stdin)
	if err != nil {
		return fail(stderr, err)
	}
	opts := []punt.Option{punt.WithArch(arch), punt.WithMaxEvents(*maxEvents)}
	if *exact {
		opts = append(opts, punt.WithMode(punt.Exact))
	}
	res, err := punt.New(opts...).Synthesize(context.Background(), spec)
	if err != nil {
		return fail(stderr, err)
	}
	if *stats {
		fmt.Fprintf(stderr, "%s\n", &res.Stats)
	}
	if *doVerify {
		rep, err := punt.Verify(context.Background(), spec, res, punt.WithMaxStates(*maxStates))
		if err != nil {
			// Exit 3: the implementation failed (or could not complete)
			// verification, as opposed to synthesis failure (1).
			fmt.Fprintln(stderr, "punt:", err)
			return 3
		}
		if *stats {
			fmt.Fprintf(stderr, "%s\n", rep)
		}
	}
	if *verilog {
		fmt.Fprint(stdout, res.Verilog())
	} else {
		fmt.Fprint(stdout, res.Eqn())
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "punt:", err)
	return 1
}
