package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// The CLI golden tests drive the whole command in-process through run(),
// which exercises exactly the public facade path a user's shell invocation
// takes: flag parsing, LoadFile/stdin, the Synthesizer and the emitters.

const fig1Eqn = "# implementation of paper-fig1 (2 literals)\nb = a + c\n"

func runCmd(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestEquationsGolden(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("stdout = %q, want the Figure 1 cover b = a + c:\n%q", stdout, fig1Eqn)
	}
}

func TestVerilogFlag(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-verilog", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"module paper_fig1", "assign b = (a) | (c);", "endmodule"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("verilog output missing %q:\n%s", want, stdout)
		}
	}
}

func TestStatsFlag(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-stats", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("equations must still go to stdout, got %q", stdout)
	}
	// The paper's Figure 1 segment has 8 events and 2 cut-offs.
	for _, want := range []string{"events=8", "cutoffs=2"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stats output missing %q: %s", want, stderr)
		}
	}
}

func TestExactModeMatchesApproximate(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-exact", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("-exact changed the Figure 1 cover: %q", stdout)
	}
}

func TestStdinDash(t *testing.T) {
	spec := `
.model tiny
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.initial_state 00
.end
`
	code, stdout, stderr := runCmd(t, []string{"-"}, spec)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "b = a") {
		t.Errorf("stdin synthesis output: %q", stdout)
	}
}

func TestVerifyFlagPasses(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-verify", "-stats", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("equations must still go to stdout, got %q", stdout)
	}
	if !strings.Contains(stderr, "verified 1 gates") {
		t.Errorf("-verify -stats should report the verification summary, got: %s", stderr)
	}
}

func TestVerifyFailureExitsThree(t *testing.T) {
	// A verification that cannot complete within its composed-state budget
	// must exit with the dedicated verification status 3, not with the
	// synthesis-failure status 1.
	code, stdout, stderr := runCmd(t, []string{"-verify", "-max-states", "2", "../../testdata/fig1.g"}, "")
	if code != 3 {
		t.Fatalf("exit = %d, want 3; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("no implementation must be printed when verification fails, got %q", stdout)
	}
	if !strings.Contains(stderr, "resource limit") && !strings.Contains(stderr, "state limit") {
		t.Errorf("stderr should explain the verification failure: %s", stderr)
	}
}

func TestSynthesisFailureStaysExitOne(t *testing.T) {
	// -verify must not reclassify synthesis failures: a non-semi-modular
	// specification still fails during synthesis with exit 1.
	code, _, stderr := runCmd(t, []string{"-verify", "../../testdata/nonsm.g"}, "")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "not semi-modular") {
		t.Errorf("stderr should report the synthesis failure: %s", stderr)
	}
}

func TestNonSemiModularErrorExit(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"../../testdata/nonsm.g"}, "")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s", code, stdout)
	}
	if stdout != "" {
		t.Errorf("no implementation must be printed on failure, got %q", stdout)
	}
	if !strings.Contains(stderr, "not semi-modular") {
		t.Errorf("stderr should report the semi-modularity violation: %s", stderr)
	}
}

func TestBadArchitectureAndUsageExits(t *testing.T) {
	// Bad flag values are usage errors: exit 2, like unknown flags.
	if code, _, stderr := runCmd(t, []string{"-arch", "nand-only", "../../testdata/fig1.g"}, ""); code != 2 ||
		!strings.Contains(stderr, "unknown architecture") {
		t.Errorf("bad -arch: exit=%d stderr=%s", code, stderr)
	}
	if code, _, _ := runCmd(t, nil, ""); code != 2 {
		t.Errorf("missing file argument must exit 2, got %d", code)
	}
	if code, _, stderr := runCmd(t, []string{"no-such-file.g"}, ""); code != 1 ||
		!strings.Contains(stderr, "no-such-file.g") {
		t.Errorf("missing file: exit=%d stderr=%s", code, stderr)
	}
}

func TestEngineFlag(t *testing.T) {
	// Every engine — the baselines and the portfolio scheduler included —
	// derives the same Figure 1 cover.
	for _, engine := range []string{"unfolding", "explicit", "symbolic", "decompose", "portfolio"} {
		code, stdout, stderr := runCmd(t, []string{"-engine", engine, "../../testdata/fig1.g"}, "")
		if code != 0 {
			t.Fatalf("-engine %s: exit %d, stderr: %s", engine, code, stderr)
		}
		if stdout != fig1Eqn {
			t.Errorf("-engine %s changed the Figure 1 cover: %q", engine, stdout)
		}
	}
}

func TestPortfolioStatsNameContenders(t *testing.T) {
	code, _, stderr := runCmd(t, []string{"-engine", "portfolio", "-stats", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "portfolio=[") || !strings.Contains(stderr, "(winner)") {
		t.Errorf("-stats should carry the per-contender breakdown, got: %s", stderr)
	}
}

func TestDecomposeEngineStats(t *testing.T) {
	// A divisible specification through -engine decompose reports the
	// per-component breakdown in -stats and still prints a full netlist.
	code, stdout, stderr := runCmd(t, []string{"-engine", "decompose", "-stats", "../../testdata/twoloops.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "decomposed=2[") {
		t.Errorf("-stats should carry the component breakdown, got: %s", stderr)
	}
	for _, sig := range []string{"a1 =", "a2 ="} {
		if !strings.Contains(stdout, sig) {
			t.Errorf("netlist missing %q:\n%s", sig, stdout)
		}
	}
}

func TestBadEngineExitsTwo(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-engine", "quantum", "../../testdata/fig1.g"}, "")
	if code != 2 {
		t.Fatalf("bad -engine must be a usage error (exit 2), got %d; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("no implementation must be printed, got %q", stdout)
	}
	if !strings.Contains(stderr, "unknown engine") || !strings.Contains(stderr, "usage:") {
		t.Errorf("stderr should name the bad engine and show usage: %s", stderr)
	}
}

func TestResolveCSCFlag(t *testing.T) {
	// Without -resolve-csc the CSC-conflicted controller fails with exit 1.
	code, stdout, stderr := runCmd(t, []string{"../../testdata/csc.g"}, "")
	if code != 1 || stdout != "" {
		t.Fatalf("without -resolve-csc: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}
	// With it the repair is automatic: the implementation (including the
	// inserted csc0 gate) goes to stdout and the insertion summary to stderr.
	code, stdout, stderr = runCmd(t, []string{"-resolve-csc", "-verify", "../../testdata/csc.g"}, "")
	if code != 0 {
		t.Fatalf("-resolve-csc: exit=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{"out1 =", "out2 =", "csc0 ="} {
		if !strings.Contains(stdout, want) {
			t.Errorf("implementation missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "resolved CSC by inserting csc0") ||
		!strings.Contains(stderr, "csc0+ after out1+") {
		t.Errorf("stderr should carry the insertion summary, got: %s", stderr)
	}
}

func TestResolveCSCSignalBound(t *testing.T) {
	// A -max-csc-signals bound of zero falls back to the default and still
	// repairs; the flag is plumbed through (a negative bound is also the
	// default, so use a generous explicit bound to prove acceptance).
	code, stdout, stderr := runCmd(t, []string{"-resolve-csc", "-max-csc-signals", "2", "-stats", "../../testdata/csc.g"}, "")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "csc-inserted=1") {
		t.Errorf("-stats should report the insertion counters: %s", stderr)
	}
	if !strings.Contains(stdout, "csc0 =") {
		t.Errorf("stdout: %q", stdout)
	}
}

func TestMultiFileWithSharedCache(t *testing.T) {
	// The same file twice with -cache: the second synthesis is a cache hit,
	// visible in its -stats line, and both implementations are emitted.
	code, stdout, stderr := runCmd(t,
		[]string{"-cache", "-stats", "../../testdata/fig1.g", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn+fig1Eqn {
		t.Errorf("both files must be synthesised, got %q", stdout)
	}
	if !strings.Contains(stderr, "cached=true") {
		t.Errorf("the repeated spec should be served from the cache: %s", stderr)
	}
	if strings.Count(stderr, "cached=true") != 1 {
		t.Errorf("only the second run may be cached: %s", stderr)
	}
}

func TestDeadlineExhaustionExitsFour(t *testing.T) {
	// Explicit enumeration of the 22-stage pipeline cannot finish in 50ms:
	// the budget trip must use its own exit status, distinct from synthesis
	// failure (1), usage (2) and verification (3), and print the budget
	// diagnostic.
	code, _, stderr := runCmd(t,
		[]string{"-engine", "explicit", "-deadline", "50ms", "../../testdata/pipeline24.g"}, "")
	if code != 4 {
		t.Fatalf("exit = %d, want 4; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "budget exhausted") || !strings.Contains(stderr, "deadline 50ms") {
		t.Errorf("stderr should carry the budget diagnostic: %s", stderr)
	}
}

func TestFallbackFlagDegrades(t *testing.T) {
	// The same over-budget request with -fallback degrades to the unfolding
	// engine and succeeds, reporting the attempt ladder on stderr.  The
	// deadline is far above what the unfolding rungs need even under the race
	// detector's slowdown, yet explicit enumeration of the ~4M-state pipeline
	// cannot come close to finishing within it.
	code, stdout, stderr := runCmd(t,
		[]string{"-engine", "explicit", "-deadline", "2s", "-fallback", "-stats",
			"../../testdata/pipeline24.g"}, "")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout == "" {
		t.Error("no implementation emitted")
	}
	if !strings.Contains(stderr, "degraded to fallback step") {
		t.Errorf("stderr should report the degradation: %s", stderr)
	}
	if !strings.Contains(stderr, "attempts=[") {
		t.Errorf("-stats should render the attempt ladder: %s", stderr)
	}
}

func TestBadDeadlineIsUsageError(t *testing.T) {
	if code, _, _ := runCmd(t, []string{"-deadline", "soon", "../../testdata/fig1.g"}, ""); code != 2 {
		t.Fatalf("exit = %d, want the usage status 2", code)
	}
}

// brokenWriter fails every write, simulating a closed pipe or a full disk.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// A failing stdout must fail the run: the artifact on stdout is the
// command's product, and truncating it under exit 0 corrupts pipelines.
func TestOutputWriteFailureExitsNonZero(t *testing.T) {
	var errb bytes.Buffer
	code := run([]string{"../../testdata/fig1.g"}, strings.NewReader(""), brokenWriter{}, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a failing stdout", code)
	}
	if !strings.Contains(errb.String(), "writing output") {
		t.Errorf("stderr should report the output failure: %s", errb.String())
	}
}
