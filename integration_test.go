package punt

import (
	"context"
	"testing"

	"punt/internal/baseline"
	"punt/internal/benchgen"
	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// verify checks every gate of an implementation against the explicit state
// graph of a fresh copy of the specification.
func verifyAgainstStateGraph(t *testing.T, mk func() *stg.STG, im *gatelib.Implementation) {
	t.Helper()
	g := mk()
	sg, err := stategraph.Build(context.Background(), g, stategraph.Options{MaxStates: 2000000})
	if err != nil {
		t.Fatalf("%s: state graph: %v", g.Name(), err)
	}
	for _, gate := range im.Gates {
		sig, ok := g.SignalIndex(gate.Signal)
		if !ok {
			t.Fatalf("%s: unknown signal %q", g.Name(), gate.Signal)
		}
		switch gate.Arch {
		case gatelib.ComplexGate:
			if err := sg.VerifyCover(sig, gate.Cover); err != nil {
				t.Errorf("%s: %v", g.Name(), err)
			}
		default:
			if err := sg.VerifySetReset(sig, gate.Set, gate.Reset); err != nil {
				t.Errorf("%s: %v", g.Name(), err)
			}
		}
	}
}

// TestPUNTCorrectOnTable1Suite is the end-to-end correctness check: for every
// Table 1 benchmark that is small enough to enumerate, the unfolding-based
// implementation must be functionally correct with respect to the explicit
// state graph, and its literal count must match the exact state-graph flow.
func TestPUNTCorrectOnTable1Suite(t *testing.T) {
	for _, entry := range benchgen.Table1Suite() {
		entry := entry
		if entry.Signals > 14 && testing.Short() {
			continue
		}
		if entry.Signals > 18 {
			continue // too large for explicit verification; covered by benchmarks
		}
		t.Run(entry.Name, func(t *testing.T) {
			im, stats, err := core.New(core.Options{}).Synthesize(context.Background(), entry.Build())
			if err != nil {
				t.Fatalf("punt: %v", err)
			}
			verifyAgainstStateGraph(t, entry.Build, im)

			ex := &baseline.ExplicitSynthesizer{MaxStates: 2000000}
			imSG, _, err := ex.Synthesize(context.Background(), entry.Build())
			if err != nil {
				t.Fatalf("explicit baseline: %v", err)
			}
			if im.Literals() > imSG.Literals()+entry.Signals {
				t.Errorf("literal count %d much worse than SG-exact %d", im.Literals(), imSG.Literals())
			}
			t.Logf("%s: punt=%d literals (%d events, %d refined terms), sg-exact=%d literals",
				entry.Name, im.Literals(), stats.Events, stats.TermsRefined, imSG.Literals())
		})
	}
}

// TestPUNTCorrectOnPipelines checks the scalable example end to end for sizes
// that the explicit state graph can still verify.
func TestPUNTCorrectOnPipelines(t *testing.T) {
	for _, stages := range []int{1, 3, 6, 9} {
		mk := func() *stg.STG { return benchgen.MullerPipeline(stages) }
		im, stats, err := core.New(core.Options{}).Synthesize(context.Background(), mk())
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if stats.TermsRefined != 0 {
			t.Errorf("stages=%d: the pipeline should not need refinement, refined %d terms",
				stages, stats.TermsRefined)
		}
		verifyAgainstStateGraph(t, mk, im)
		// Every internal stage is a Muller C-element of its two neighbours:
		// three cubes of two literals each.
		for i := 2; i < stages; i++ {
			gate, ok := im.Gate(gateName(i))
			if !ok {
				t.Fatalf("stages=%d: missing gate c%d", stages, i)
			}
			if gate.Literals() != 6 {
				t.Errorf("stages=%d: gate c%d has %d literals, want the 6-literal C-element",
					stages, i, gate.Literals())
			}
		}
	}
}

func gateName(i int) string {
	return "c" + string(rune('0'+i))
}

// TestPUNTCorrectOnChoiceController exercises input choice end to end.
func TestPUNTCorrectOnChoiceController(t *testing.T) {
	mk := func() *stg.STG { return benchgen.ChoiceController("choice", 5, 11) }
	im, _, err := core.New(core.Options{}).Synthesize(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstStateGraph(t, mk, im)
}

// TestAllArchitecturesOnReadController checks the three implementation
// architectures on the same controller.
func TestAllArchitecturesOnReadController(t *testing.T) {
	mk := func() *stg.STG { return benchgen.SyntheticController("read-ctl", 8, 3) }
	for _, arch := range []gatelib.Architecture{gatelib.ComplexGate, gatelib.StandardC, gatelib.RSLatch} {
		im, _, err := core.New(core.Options{Arch: arch}).Synthesize(context.Background(), mk())
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		verifyAgainstStateGraph(t, mk, im)
	}
}

// TestExactModeMatchesApproximateMode compares the two unfolding-based modes
// across the small suite: both must be correct; exact mode enumerates states
// and is the reference for cover quality.
func TestExactModeMatchesApproximateMode(t *testing.T) {
	for _, entry := range benchgen.Table1Suite() {
		if entry.Signals > 10 {
			continue
		}
		approx, _, err := core.New(core.Options{}).Synthesize(context.Background(), entry.Build())
		if err != nil {
			t.Fatalf("%s approx: %v", entry.Name, err)
		}
		exact, _, err := core.New(core.Options{Mode: core.Exact}).Synthesize(context.Background(), entry.Build())
		if err != nil {
			t.Fatalf("%s exact: %v", entry.Name, err)
		}
		verifyAgainstStateGraph(t, entry.Build, approx)
		verifyAgainstStateGraph(t, entry.Build, exact)
		if approx.Literals() != exact.Literals() {
			t.Logf("%s: approx=%d exact=%d literals (both verified)", entry.Name, approx.Literals(), exact.Literals())
		}
	}
}
