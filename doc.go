// Package punt is a from-scratch Go reproduction of "Synthesis of Speed
// Independent Circuits from STG-unfolding Segment" (Semenov, Yakovlev,
// Pastor, Peña, Cortadella — DAC 1997).
//
// The library synthesises speed-independent asynchronous circuits from Signal
// Transition Graph specifications without building the full state graph:
// it constructs a finite STG-unfolding segment, partitions it into slices per
// output signal, derives approximated on/off-set covers from concurrency
// information local to the segment and refines them only where they
// interfere.  Explicit and BDD-based state-graph synthesizers are included as
// the baselines the paper compares against, together with the benchmark
// generators and the harness that regenerates Table 1 and Figure 6.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package punt
