// Package punt is a from-scratch Go reproduction of "Synthesis of Speed
// Independent Circuits from STG-unfolding Segment" (Semenov, Yakovlev,
// Pastor, Peña, Cortadella — DAC 1997).
//
// The library synthesises speed-independent asynchronous circuits from Signal
// Transition Graph specifications without building the full state graph:
// it constructs a finite STG-unfolding segment, partitions it into slices per
// output signal, derives approximated on/off-set covers from concurrency
// information local to the segment and refines them only where they
// interfere.  Explicit and BDD-based state-graph synthesizers are included as
// the baselines the paper compares against, together with the benchmark
// generators and the harness that regenerates Table 1 and Figure 6.
//
// This package is the public facade over the whole flow.  Load, LoadFile and
// Parse read ".g" specifications into an immutable Spec; New builds a
// Synthesizer from functional options (WithMode, WithArch, WithEngine,
// resource budgets, WithProgress); Synthesize(ctx, spec) runs the configured
// engine under context cancellation and returns a Result with the gate-level
// implementation (see punt/gates) and Table-1-style Stats.  Batch drives many
// specifications through a bounded worker pool with per-item error isolation.
// Failures are structured *Diagnostic values carrying the offending signal,
// place and trace, matchable against the package sentinels (ErrNotSafe,
// ErrEventLimit, ErrNotSemiModular, ErrCSC, ErrLimit, ErrVerification) with
// errors.Is.  Not every rejection is final: a Complete State Coding conflict
// (KindCSC) is repairable, and WithResolveCSC turns the rejection into an
// automatic repair — internal state signals csc0, csc1, … are inserted until
// CSC holds, the repaired specification is re-synthesised and proven
// conformant, hazard-free and live by the closed-loop verifier, and the
// result carries the repair record as a KindResolved informational
// diagnostic (Result.Resolution) plus Stats counters; only when the signal
// bound cannot repair the conflict does Synthesize still fail with KindCSC.
// Unfold and BuildStateGraph expose the segment and the explicit state graph
// for analysis (BuildStateGraph's CSCConflicts returns the structured
// conflict cores: state pairs, differing outputs, witness traces); punt/bench
// re-runs the paper's evaluation.
//
// The engine layer is open: synthesis engines are Backend implementations in
// a package-level registry (Register, Backends, WithBackend), the builtin
// four included, and Synthesize is a thin dispatch over it.  Three composable
// subsystems build on the registry.  The portfolio scheduler
// (WithEngine(Portfolio), WithPortfolio, WithContenders) races backends
// concurrently under a shared context, returns the first success, cancels
// the losers promptly and records every contender's outcome in
// Stats.Contenders, with Progress.Engine attributing interleaved progress.
// The compositional decompose engine (WithEngine(Decompose),
// WithDecomposeInner) factors the specification into independent components
// — signal groups sharing no place, transition or signal, or the two sides
// of a single dummy articulation transition — synthesizes each projected
// sub-specification concurrently through an inner registered engine, and
// recombines the covers onto the full alphabet; an exact split is sound by
// construction, an articulated one is re-proved by the closed-loop verifier
// (falling back to monolithic synthesis on failure), and an indivisible
// specification falls through to the inner engine with byte-identical output
// and a KindIndivisible informational diagnostic (Result.Decomposition,
// Stats.Decomposed/Components, Components for a synthesis-free preview).
// The content-addressed result cache (Cache, NewLRU, WithCache) keys results
// by Spec.Hash crossed with the canonicalised engine configuration, so
// repeated synthesis of identical specifications — the hot path of a
// high-traffic service and of Batch/Differential sweeps — is a sharded-LRU
// lookup instead of a re-run (hits are marked Stats.Cached).  The cache
// composes into a persistent tier: NewDiskCache is a content-addressed
// on-disk store of EncodeResult documents (atomic write-then-rename,
// checksummed, a corrupt entry degrades to a miss and is evicted), and
// NewTiered stacks an in-memory LRU over it with promotion on hit, so warm
// results survive process restarts and are shared by every process pointed
// at the same directory.  CacheKey and Cached expose the key derivation and
// the hit path to outer layers, and Stats() on each tier reports
// hit/miss/eviction/corruption counters (CacheStats).  The punt/server
// package and the puntd command serve this whole facade over HTTP —
// synthesis-as-a-service with admission control, single-flight deduplication
// of identical concurrent requests, streamed progress and the persistent
// store as its backing cache.
//
// The facade is also governed: WithDeadline and WithMemoryBudget bound every
// synthesis attempt with a watchdog (wall clock and sampled heap growth), and
// exhaustion fails with a KindBudget diagnostic wrapping a *BudgetError that
// carries the attempt's partial progress — matched by the ErrBudget sentinel,
// distinct from ErrLimit (a structural engine bound) and from the caller's
// own cancellation (KindCanceled).  WithFallback installs a degradation
// ladder: on ErrLimit or ErrBudget the request is retried through named
// cheaper configurations (approximate mode, smaller bounds, an alternate
// engine — the paper's own move of substituting a truncated segment for the
// full state space), every rung is recorded in Stats.Attempts (or
// Diagnostic.Attempts on total failure), and a result produced by a fallback
// step is tagged with a KindDegraded informational diagnostic
// (Result.Degradation) and never cached.  Backend panics are recovered at the
// central dispatch on every entry point and surface as KindPanic diagnostics
// wrapping a *PanicError with the captured stack; results produced under an
// expired or budget-tripped context are discarded rather than returned or
// cached.  The internal/faultinject harness drives all of this under seeded
// fault schedules (injected cancellations, panics, slowdowns and cache
// corruption) in the chaos test suite.
//
// Synthesis results do not have to be trusted blindly: Verify closes the loop
// with an event-driven gate-level simulation of the implementation composed
// with the specification's environment, exploring every interleaving under
// arbitrary gate delays and checking output-trace conformance, hazard-freedom
// and liveness.  A violation is a *Diagnostic (KindConformance, KindHazard or
// KindLiveness, all matched by ErrVerification) carrying the offending signal
// and a timed counterexample trace.  Differential cross-checks all synthesis
// engines against the state-graph oracle state by state; together with the
// benchgen.RandomSTG specification generator it backs the repository's
// differential fuzzing harness (go test -fuzz=FuzzDifferential).
//
// The segment builder (internal/unfolding) is the hot path of the system and
// is engineered accordingly: events carry their cut, marking and binary code
// computed incrementally from their preset producers rather than by replaying
// local configurations; causality, concurrency and co-set candidate pruning
// run on word-level bit sets; and cut-off detection uses collision-verified
// 64-bit hash tables instead of string keys.  See the package documentation
// of internal/unfolding for details, and cmd/benchtab's -json flag for the
// machine-readable perf trajectory the benchmarks are tracked with.
//
// WithWorkers(n) additionally parallelises the inside of a single synthesis,
// not just Batch and the portfolio: with n > 1 the builder's
// possible-extension search — the dominant cost of unfolding — is sharded
// across a pool of n worker lanes with per-lane scratch state, and the CSC
// resolver validates its ranked insertion candidates concurrently, extending
// the parent state graph incrementally around the inserted signal instead of
// rebuilding it per candidate (Stats.CSCStatesReused, CSCStatesExpanded and
// CSCFullRebuilds report the reuse).  The determinism guarantee is explicit
// and test-enforced: for every specification and every n, the unfolding
// segment, the state-graph trajectory and the synthesized implementation are
// byte-identical to the sequential run — discovered extensions are merged in
// the deterministic task order the sequential search would have produced, and
// the parallel candidate scan picks the same winner as the sequential
// rank-order scan.  The worker count is therefore a pure throughput knob:
// changing it can never change a result, which is also why CacheKey
// deliberately excludes it (a result synthesized at one width is served
// verbatim at any other).  Progress callbacks stay serialized on the
// coordinating goroutine under any n.
//
// The repository's cross-cutting invariants — byte-identical deterministic
// output, context discipline on every blocking path, the *Diagnostic error
// taxonomy at the facade boundary, goroutine panic hygiene and cache-key
// purity — are not conventions but checked properties: punt/internal/lint
// implements a project-specific static-analysis suite (five analyzers in the
// shape of golang.org/x/tools/go/analysis, built on the standard library
// alone) and cmd/puntlint is the multichecker CI gates on.  Justified
// exceptions are recorded in the source as //puntlint:ignore directives with
// a mandatory reason; stale or unexplained directives fail the gate.
//
// See README.md for the layout, a quickstart and the CLI overview.
package punt
