package punt

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"punt/gates"
)

// TestResultJSONRoundTrip proves the exported serializer round-trips a real
// synthesis result: marshal → unmarshal → marshal yields byte-identical
// documents (the stability the disk store and the HTTP API both rely on),
// and the decoded result is semantically equal to the original.
func TestResultJSONRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{name: "unfolding"},
		{name: "explicit", opts: []Option{WithEngine(Explicit)}},
		{name: "standard-c", opts: []Option{WithArch(gates.StandardC)}},
		{name: "resolved", opts: []Option{WithResolveCSC(0)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := Fig1()
			if tc.name == "resolved" {
				var err error
				spec, err = LoadFile("testdata/csc.g")
				if err != nil {
					t.Fatalf("load csc.g: %v", err)
				}
			}
			res, err := New(tc.opts...).Synthesize(context.Background(), spec)
			if err != nil {
				t.Fatalf("synthesize: %v", err)
			}
			blob, err := EncodeResult(res)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			back, err := DecodeResult(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got, want := back.Eqn(), res.Eqn(); got != want {
				t.Errorf("equations changed across the wire:\n got %q\nwant %q", got, want)
			}
			if got, want := back.Spec.Hash(), res.Spec.Hash(); got != want {
				t.Errorf("spec hash changed: got %s want %s", got, want)
			}
			if got, want := back.Stats.Engine, res.Stats.Engine; got != want {
				t.Errorf("engine changed: got %v want %v", got, want)
			}
			if back.Resolved() != res.Resolved() {
				t.Errorf("Resolved() changed: got %v want %v", back.Resolved(), res.Resolved())
			}
			again, err := EncodeResult(back)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(blob, again) {
				t.Errorf("marshal → unmarshal → marshal is not byte-stable:\n first %s\nsecond %s", blob, again)
			}
		})
	}
}

// TestResultJSONRejectsCorruption exercises the decode-side validation: a
// tampered document must fail, never yield a half-usable Result.
func TestResultJSONRejectsCorruption(t *testing.T) {
	res, err := New().Synthesize(context.Background(), Fig1())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	blob, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeResult(blob[:len(blob)/2]); err == nil {
			t.Fatal("truncated document decoded")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := bytes.Replace(blob, []byte(`"format":1`), []byte(`"format":99`), 1)
		if _, err := DecodeResult(bad); err == nil || !strings.Contains(err.Error(), "format") {
			t.Fatalf("wrong-version document decoded: %v", err)
		}
	})
	t.Run("hash mismatch", func(t *testing.T) {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(blob, &raw); err != nil {
			t.Fatal(err)
		}
		raw["spec_hash"] = json.RawMessage(`"` + strings.Repeat("ab", 32) + `"`)
		bad, _ := json.Marshal(raw)
		if _, err := DecodeResult(bad); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
			t.Fatalf("hash-tampered document decoded: %v", err)
		}
	})
	t.Run("no implementation", func(t *testing.T) {
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(blob, &raw); err != nil {
			t.Fatal(err)
		}
		delete(raw, "impl")
		bad, _ := json.Marshal(raw)
		if _, err := DecodeResult(bad); err == nil {
			t.Fatal("implementation-less document decoded")
		}
	})
	t.Run("mangled cover", func(t *testing.T) {
		bad := bytes.Replace(blob, []byte(`"cubes":["`), []byte(`"cubes":["x`), 1)
		if _, err := DecodeResult(bad); err == nil {
			t.Fatal("cover-mangled document decoded")
		}
	})
}

// TestDiagnosticJSONRoundTrip proves structured errors survive the wire with
// their classification intact: a decoded diagnostic still matches the
// unified sentinels through errors.Is.
func TestDiagnosticJSONRoundTrip(t *testing.T) {
	d := &Diagnostic{
		Op:     "synthesize",
		Spec:   "csc-example",
		Kind:   KindCSC,
		Signal: "out1",
		Trace:  []string{"state 0101", "state 0101'"},
		Attempts: []Attempt{
			{Backend: "unfolding", Outcome: "CSC conflict", Elapsed: 12 * time.Millisecond},
		},
		Err: errors.New("boom"),
	}
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back := new(Diagnostic)
	if err := json.Unmarshal(blob, back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !errors.Is(back, ErrCSC) {
		t.Error("decoded diagnostic no longer matches ErrCSC")
	}
	if back.Signal != d.Signal || back.Op != d.Op || len(back.Attempts) != 1 {
		t.Errorf("structure lost: %+v", back)
	}
	if !strings.Contains(back.Error(), "boom") {
		t.Errorf("underlying message lost: %q", back.Error())
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(blob, again) {
		t.Errorf("diagnostic marshal is not byte-stable:\n first %s\nsecond %s", blob, again)
	}
}

// TestContenderJSONRoundTrip covers the portfolio breakdown, whose error
// field needs explicit wire handling.
func TestContenderJSONRoundTrip(t *testing.T) {
	cs := []Contender{
		{Engine: "unfolding", Winner: true, Started: true, Elapsed: time.Millisecond},
		{Engine: "explicit", Started: true, Elapsed: 2 * time.Millisecond, Err: errors.New("canceled")},
		{Engine: "symbolic"},
	}
	blob, err := json.Marshal(cs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []Contender
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back[1].Err == nil || back[1].Err.Error() != "canceled" {
		t.Errorf("contender error lost: %+v", back[1])
	}
	again, _ := json.Marshal(back)
	if !bytes.Equal(blob, again) {
		t.Errorf("contender marshal is not byte-stable")
	}
}
