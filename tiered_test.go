package punt_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"punt"
)

// writeStoreEntry plants an entry file with a valid diskstore envelope
// (correct magic, version, checksum, length) around an arbitrary body —
// the shape of an entry whose payload was tampered with before the store
// wrote it, which only result-level validation can catch.
func writeStoreEntry(t *testing.T, dir, key string, body []byte) {
	t.Helper()
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	path := filepath.Join(dir, h[:2], h)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	bodySum := sha256.Sum256(body)
	header := fmt.Sprintf("puntstore 1 %s %d\n", hex.EncodeToString(bodySum[:]), len(body))
	if err := os.WriteFile(path, append([]byte(header), body...), 0o644); err != nil {
		t.Fatal(err)
	}
}

// storeFiles lists the entry files under a disk cache directory.
func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDiskCacheSurvivesRestart is the restart-persistence proof the service
// deployment relies on: synthesize against a tiered cache, tear the process
// state down (fresh LRU, fresh DiskCache on the same directory — everything
// a restarted daemon would rebuild), and the re-parsed specification is
// served as a warm hit with the identical implementation.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	disk, err := punt.NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := punt.New(punt.WithCache(punt.NewTiered(punt.NewLRU(0), disk)))
	cold, err := s.Synthesize(ctx, punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Cached {
		t.Fatal("first synthesis reported as cached")
	}
	if len(storeFiles(t, dir)) == 0 {
		t.Fatal("synthesis persisted nothing to the store directory")
	}

	// "Restart": new cache tiers over the same directory, new Synthesizer,
	// re-parsed spec.
	disk2, err := punt.NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := punt.Parse(punt.Fig1().Text())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := punt.New(punt.WithCache(punt.NewTiered(punt.NewLRU(0), disk2))).
		Synthesize(ctx, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Cached {
		t.Fatal("result did not survive the restart as a warm hit")
	}
	if got, want := warm.Eqn(), cold.Eqn(); got != want {
		t.Errorf("restarted warm hit changed the implementation:\n got %q\nwant %q", got, want)
	}
	if got, want := warm.Spec.Hash(), cold.Spec.Hash(); got != want {
		t.Errorf("restarted warm hit changed the spec hash: got %s want %s", got, want)
	}

	// Second request on the restarted instance is an L1 hit: the promotion
	// path filled the memory tier.
	tiered := punt.NewTiered(punt.NewLRU(0), disk2)
	sy := punt.New(punt.WithCache(tiered))
	if _, err := sy.Synthesize(ctx, spec2); err != nil {
		t.Fatal(err)
	}
	if _, err := sy.Synthesize(ctx, spec2); err != nil {
		t.Fatal(err)
	}
	st := tiered.Stats()
	if len(st.Tiers) != 2 {
		t.Fatalf("tiered stats carry %d tiers, want 2: %+v", len(st.Tiers), st)
	}
	l1, l2 := st.Tiers[0], st.Tiers[1]
	if l1.Tier != "lru" || l2.Tier != "disk" {
		t.Fatalf("tier order wrong: %q then %q", l1.Tier, l2.Tier)
	}
	if l2.Hits == 0 {
		t.Errorf("disk tier recorded no hits: %+v", l2)
	}
	if l1.Hits == 0 {
		t.Errorf("promotion did not warm the memory tier: %+v", l1)
	}
}

// TestCorruptDiskEntryNeverPoisonsL1 is the corruption regression: damage
// every byte pattern we can between two reads and prove (a) the damaged
// entry counts as a corrupt miss, (b) synthesis recovers, and (c) the
// in-memory tier never receives the damaged bytes.
func TestCorruptDiskEntryNeverPoisonsL1(t *testing.T) {
	for name, damage := range map[string]func([]byte) []byte{
		// Both flavors are caught at the store envelope (checksum/length);
		// payload-level tamper behind a valid envelope is covered separately
		// by TestDiskCacheRejectsPayloadTamper.
		"checksum":   func(b []byte) []byte { b[len(b)-2] ^= 0xff; return b },
		"truncation": func(b []byte) []byte { return b[:len(b)*3/4] },
	} {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			disk, err := punt.NewDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			lru := punt.NewLRU(0)
			tiered := punt.NewTiered(lru, disk)
			s := punt.New(punt.WithCache(tiered))
			cold, err := s.Synthesize(ctx, punt.Fig1())
			if err != nil {
				t.Fatal(err)
			}

			files := storeFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected one store file, found %v", files)
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], damage(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh memory tier over the damaged disk tier: the damaged entry
			// must read as a miss, synthesis must recover, and the recovered
			// (not the damaged) result must be what lands in L1.
			freshLRU := punt.NewLRU(0)
			fresh := punt.NewTiered(freshLRU, disk)
			s2 := punt.New(punt.WithCache(fresh))
			rec, err := s2.Synthesize(ctx, punt.Fig1())
			if err != nil {
				t.Fatalf("synthesis did not recover from disk corruption: %v", err)
			}
			if rec.Stats.Cached {
				t.Fatal("damaged entry was served as a warm hit")
			}
			if got, want := rec.Eqn(), cold.Eqn(); got != want {
				t.Errorf("recovered result differs:\n got %q\nwant %q", got, want)
			}
			if c := disk.Stats().Corrupt; c != 1 {
				t.Errorf("disk tier corrupt counter = %d, want 1", c)
			}
			if st := freshLRU.Stats(); st.Entries != 1 {
				t.Errorf("L1 entries = %d, want exactly the recovered result", st.Entries)
			}
			// And the re-warmed slot serves clean bytes again.
			warm, err := s2.Synthesize(ctx, punt.Fig1())
			if err != nil {
				t.Fatal(err)
			}
			if !warm.Stats.Cached || warm.Eqn() != cold.Eqn() {
				t.Errorf("slot did not re-warm cleanly: cached=%v", warm.Stats.Cached)
			}
		})
	}
}

// TestDiskCacheRejectsPayloadTamper covers the decoder-level corruption
// flavor: a store entry whose envelope is intact (valid header + checksum)
// but whose JSON payload is not a servable result.  The store alone cannot
// catch this — the DiskCache's decode validation must.
func TestDiskCacheRejectsPayloadTamper(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	disk, err := punt.NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := punt.New(punt.WithCache(disk))
	if _, err := s.Synthesize(ctx, punt.Fig1()); err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected one store file, found %v", files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tamper inside the JSON body, then rewrite the entry through a fresh
	// store Put so the envelope checksum matches the tampered payload.
	nl := bytes.IndexByte(raw, '\n')
	body := bytes.Replace(raw[nl+1:], []byte(`"format":1`), []byte(`"format":99`), 1)
	if bytes.Equal(body, raw[nl+1:]) {
		t.Fatal("tamper did not apply; wire format changed?")
	}
	key := s.CacheKey(punt.Fig1())
	writeStoreEntry(t, dir, key, body)

	if res, ok := disk.Get(key); ok {
		t.Fatalf("tampered payload served as a hit: %v", res)
	}
	if c := disk.Stats().Corrupt; c == 0 {
		t.Error("payload tamper not counted as corruption")
	}
	if remaining := storeFiles(t, dir); len(remaining) != 0 {
		t.Errorf("tampered entry not dropped: %v", remaining)
	}
}

// TestPlainCacheInterface exercises the context-free Cache methods — the
// path a third-party Cache consumer that knows nothing about ContextCache
// goes through.
func TestPlainCacheInterface(t *testing.T) {
	dir := t.TempDir()
	disk, err := punt.NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", disk.Dir(), dir)
	}

	s := punt.New(punt.WithCache(punt.NewLRU(0)))
	res, err := s.Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	key := s.CacheKey(punt.Fig1())

	var tiered punt.Cache = punt.NewTiered(punt.NewLRU(0), disk)
	if _, ok := tiered.Get(key); ok {
		t.Fatal("empty tiers reported a hit")
	}
	tiered.Put(key, res)
	got, ok := tiered.Get(key)
	if !ok || got.Eqn() != res.Eqn() {
		t.Fatalf("tiered Get after Put = %v, %t", got, ok)
	}
	if fromDisk, ok := punt.Cache(disk).Get(key); !ok || fromDisk.Eqn() != res.Eqn() {
		t.Fatal("Put did not write through to the disk tier")
	}
}

func TestNewTieredRejectsNilTier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTiered(nil, nil) did not panic")
		}
	}()
	punt.NewTiered(nil, punt.NewLRU(0))
}
