package punt

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"punt/gates"
	"punt/internal/core"
	"punt/internal/faultinject"
	"punt/internal/resolve"
	"punt/internal/verify"
)

// Mode selects how the unfolding-based flow derives covers.
type Mode = core.Mode

// Synthesis modes.
const (
	// Approximate derives covers from concurrency information local to the
	// segment and refines them only where they interfere (the default).
	Approximate Mode = core.Approximate
	// Exact enumerates the states encapsulated by every slice.
	Exact Mode = core.Exact
)

// Progress is a coarse progress notification delivered to the WithProgress
// callback during synthesis.
type Progress struct {
	// Engine names the backend delivering the notification; in portfolio
	// mode it identifies the contender, so interleaved notifications stay
	// attributable.
	Engine string `json:"engine,omitempty"`
	// Stage depends on the engine: the unfolding flow reports "unfold" while
	// the segment is under construction, the baselines report "build" once
	// the state space exists; every engine then reports "covers" when the
	// covers of a signal are about to be derived.
	Stage string `json:"stage"`
	// Signal names the signal being processed during the "covers" stage.
	Signal string `json:"signal,omitempty"`
	// Events is the number of segment events built so far (final size during
	// "covers"; unfolding engine only).
	Events int `json:"events,omitempty"`
	// States is the size of the state space (state-graph engines only).
	States int `json:"states,omitempty"`
}

// config collects the functional options of a Synthesizer.
type config struct {
	mode       Mode
	arch       gates.Architecture
	engine     Engine
	backend    string   // named backend override; empty = engine selects
	portfolio  []string // contender backend names for the Portfolio engine
	cache      Cache
	maxEvents  int
	maxStates  int
	maxNodes   int
	workers    int
	inner      string         // decompose backend's inner engine; empty = unfolding
	resolveCSC int            // max internal signals the CSC resolver may insert; 0 = disabled
	deadline   time.Duration  // per-attempt wall-clock budget; 0 = none
	memBudget  int64          // per-attempt heap-growth budget in bytes; 0 = none
	fallback   []FallbackStep // degradation ladder tried on ErrLimit/ErrBudget
	progress   func(Progress)
}

// selection names the config's backend selection the way Stats.Backend and
// the cache key do: the named backend, the engine, or the portfolio with its
// contender list.
func (c *config) selection() string {
	if c.backend != "" {
		return c.backend
	}
	if c.engine != Portfolio {
		return c.engine.String()
	}
	names := c.portfolio
	if len(names) == 0 {
		names = defaultContenders
	}
	return "portfolio(" + strings.Join(names, ",") + ")"
}

// Option configures a Synthesizer (and the package-level Batch, Unfold and
// BuildStateGraph helpers).
type Option func(*config)

// WithMode selects exact or approximate cover derivation for the unfolding
// engine.
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithArch selects the implementation architecture (default
// gates.ComplexGate).
func WithArch(a gates.Architecture) Option { return func(c *config) { c.arch = a } }

// WithMaxEvents bounds the size of the unfolding segment; exceeding it fails
// with ErrEventLimit (0 = the engine default of 1,000,000).
func WithMaxEvents(n int) Option { return func(c *config) { c.maxEvents = n } }

// WithMaxStates bounds the explicit state-graph engines; exceeding it fails
// with ErrLimit (0 = unlimited).
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = n } }

// WithMaxNodes bounds the symbolic engine's BDD size; exceeding it fails with
// ErrLimit (0 = unlimited).
func WithMaxNodes(n int) Option { return func(c *config) { c.maxNodes = n } }

// WithEngine selects the synthesis engine: one of the builtin backends
// (Unfolding, Explicit, Symbolic) or the Portfolio scheduler, which races the
// configured contenders (see WithPortfolio).  WithEngine(Unfolding) restores
// the default.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithBaseline selects a state-graph baseline engine (Explicit or Symbolic)
// instead of the default unfolding flow, so the baselines are driven through
// exactly the same API.  WithBaseline(Unfolding) restores the default.  It is
// a synonym of WithEngine kept for the engine-comparison vocabulary of the
// paper.
func WithBaseline(e Engine) Option { return WithEngine(e) }

// WithBackend selects a registered synthesis backend by name, including
// backends added with Register.  It overrides WithEngine/WithBaseline; an
// unknown name fails at Synthesize time with a *Diagnostic listing the
// registered backends.
func WithBackend(name string) Option { return func(c *config) { c.backend = name } }

// WithPortfolio selects the portfolio scheduler: the given engines are raced
// concurrently under a shared context, the first success wins, the losers are
// cancelled promptly, and Stats.Contenders records every contender's outcome.
// Without arguments (or with plain WithEngine(Portfolio)) the portfolio races
// the three builtin engines.  WithWorkers bounds how many contenders run at
// once; with WithWorkers(1) the contenders run sequentially in the given
// order, so the winner is deterministic.
func WithPortfolio(engines ...Engine) Option {
	return func(c *config) {
		c.engine = Portfolio
		c.portfolio = c.portfolio[:0]
		for _, e := range engines {
			c.portfolio = append(c.portfolio, e.String())
		}
	}
}

// WithContenders is WithPortfolio for named backends: the portfolio races the
// registered backends with the given names, Register-ed custom backends
// included.
func WithContenders(names ...string) Option {
	return func(c *config) {
		c.engine = Portfolio
		c.portfolio = append(c.portfolio[:0], names...)
	}
}

// WithDecomposeInner names the engine the Decompose backend synthesizes each
// component with — and falls through to, with zero overhead, when the
// specification has no independent or articulated components.  The default is
// "unfolding"; "decompose" and "portfolio" are rejected at Synthesize time.
// The inner engine runs under the decompose backend's shared cancellation, so
// a failing component aborts its siblings promptly.
func WithDecomposeInner(name string) Option { return func(c *config) { c.inner = name } }

// DefaultResolveSignals is the inserted-signal bound WithResolveCSC applies
// when given a non-positive limit.
const DefaultResolveSignals = resolve.DefaultMaxSignals

// WithResolveCSC enables automatic Complete State Coding conflict resolution:
// when the selected backend (the portfolio scheduler included) rejects a
// specification with ErrCSC, the synthesizer repairs it by inserting up to
// maxSignals fresh internal state signals (csc0, csc1, …) that disambiguate
// the conflicting states, re-synthesises the repaired specification, and
// checks the result with the closed-loop verifier against the post-insertion
// specification before returning it.  maxSignals <= 0 applies
// DefaultResolveSignals.
//
// A resolved Result carries the repaired specification in Result.Spec, the
// insertion summary in Result.Resolution (a KindResolved informational
// diagnostic) and the counters in Stats.CSCSignalsInserted and
// Stats.CSCIterations.  When the conflicts cannot be eliminated within the
// budget, Synthesize fails with a KindCSC diagnostic as before (still matched
// by errors.Is against ErrCSC).
func WithResolveCSC(maxSignals int) Option {
	return func(c *config) {
		if maxSignals <= 0 {
			maxSignals = DefaultResolveSignals
		}
		c.resolveCSC = maxSignals
	}
}

// WithCache installs a synthesis result cache, shared by every Synthesize and
// Batch call that carries it.  Results are keyed by the content hash of the
// specification (Spec.Hash) combined with the canonicalised engine
// configuration, so synthesising an identical specification again — even one
// re-parsed into a different *Spec — is a lookup instead of a re-run.  Cache
// hits return a copy whose Stats.Cached is true.  See NewLRU for the builtin
// sharded in-memory implementation.
func WithCache(cache Cache) Option { return func(c *config) { c.cache = cache } }

// WithProgress installs a callback receiving coarse progress notifications.
// The callback runs on the synthesizing goroutine and must be cheap; under
// Batch and in portfolio mode it is invoked concurrently, with
// Progress.Engine attributing each notification to its backend.
func WithProgress(fn func(Progress)) Option { return func(c *config) { c.progress = fn } }

// WithWorkers bounds parallelism at every level it exists: how many Batch
// specifications synthesize at once (0 = GOMAXPROCS), how many portfolio
// contenders run concurrently (0 = all at once), how many goroutines the
// unfolding engine shards its possible-extension computation across, and how
// many candidate validations the CSC resolver runs in parallel (<= 1 keeps
// both engine loops sequential).  Intra-engine parallelism is deterministic:
// a WithWorkers(n > 1) run produces output byte-identical to the sequential
// one, and the result-cache key deliberately excludes the worker count.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// Contender records the outcome of one portfolio contender.
type Contender struct {
	// Engine is the contender's backend name.
	Engine string
	// Winner marks the contender whose result was kept.
	Winner bool
	// Started reports whether the scheduler launched the contender at all; a
	// contender stays unstarted when a winner emerged before a worker slot
	// freed up for it.
	Started bool
	// Elapsed is the contender's wall-clock run time (zero when unstarted).
	Elapsed time.Duration
	// Err is the contender's failure: nil for the winner (and for unstarted
	// contenders), a cancellation diagnostic for aborted losers.
	Err error
	// Sub is the contender's own sub-engine breakdown, when the contender is
	// itself composite: the per-component runs of a decompose contender roll
	// up here instead of appearing as top-level contenders of the race.
	Sub []Contender
}

// String renders the contender outcome.
func (c Contender) String() string {
	var s string
	switch {
	case c.Winner:
		s = fmt.Sprintf("%s=%v(winner)", c.Engine, c.Elapsed.Round(time.Microsecond))
	case !c.Started:
		return fmt.Sprintf("%s=unstarted", c.Engine)
	case c.Err != nil:
		s = fmt.Sprintf("%s=%v(%s)", c.Engine, c.Elapsed.Round(time.Microsecond), contenderErrLabel(c.Err))
	default:
		s = fmt.Sprintf("%s=%v", c.Engine, c.Elapsed.Round(time.Microsecond))
	}
	if len(c.Sub) > 0 {
		var sb strings.Builder
		sb.WriteString(s)
		sb.WriteString("{")
		for i, sub := range c.Sub {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(sub.String())
		}
		sb.WriteString("}")
		return sb.String()
	}
	return s
}

// ComponentStat records one component of a decomposed synthesis run: the
// projected sub-specification's identity and size, the backend that
// synthesized it, and its contribution to the merged totals.
type ComponentStat struct {
	// Name is the projected sub-specification's name.
	Name string `json:"name"`
	// Backend names the inner backend that synthesized the component.
	Backend string `json:"backend,omitempty"`
	// Signals and Outputs size the component: total signals and the
	// output/internal signals whose gates it contributed.
	Signals int `json:"signals"`
	Outputs int `json:"outputs"`
	// Articulated marks components obtained by splitting at an articulation
	// transition rather than a plain disconnection.
	Articulated bool `json:"articulated,omitempty"`
	// Elapsed is the component's wall-clock synthesis time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Events (unfolding inner engine) / States (state-graph inner engines)
	// size the component's search space.
	Events int `json:"events,omitempty"`
	States int `json:"states,omitempty"`
	// Literals is the component implementation's literal count.
	Literals int `json:"literals,omitempty"`
}

// String renders the component record.
func (c ComponentStat) String() string {
	size := ""
	if c.Events > 0 {
		size = fmt.Sprintf(" events=%d", c.Events)
	} else if c.States > 0 {
		size = fmt.Sprintf(" states=%d", c.States)
	}
	return fmt.Sprintf("%s=%v(signals=%d outputs=%d%s)",
		c.Name, c.Elapsed.Round(time.Microsecond), c.Signals, c.Outputs, size)
}

// Stats is the per-run timing and size breakdown, named after the columns of
// the paper's Table 1.  The unfolding engine fills the segment fields; the
// state-graph engines fill States.  For the baselines UnfTime is the
// state-space construction time, SynTime the cover extraction and EspTime the
// two-level minimisation, so the phases stay comparable across engines.
type Stats struct {
	// Engine is the builtin engine identity of the backend that produced the
	// result (the winning contender in portfolio mode); custom backends leave
	// it at Unfolding and are identified by Backend instead.
	Engine Engine `json:"engine"`
	// Backend names the backend that produced the result; in portfolio mode
	// it names the winning contender.
	Backend string `json:"backend,omitempty"`

	// UnfTime is the segment (or state-space) construction time ("UnfTim").
	UnfTime time.Duration `json:"unf_time_ns"`
	// SynTime is the cover derivation time ("SynTim").
	SynTime time.Duration `json:"syn_time_ns"`
	// EspTime is the two-level minimisation time ("EspTim").
	EspTime time.Duration `json:"esp_time_ns"`
	// Total is the complete wall-clock synthesis time.  ("TotTim").
	Total time.Duration `json:"total_ns"`

	// Segment size (unfolding engine).
	Events     int `json:"events,omitempty"`
	Conditions int `json:"conditions,omitempty"`
	Cutoffs    int `json:"cutoffs,omitempty"`
	// States is the number of reachable states (state-graph engines).
	States int `json:"states,omitempty"`

	// Refinement counters (unfolding engine, approximate mode).
	TermsRefined   int `json:"terms_refined,omitempty"`
	SignalsRefined int `json:"signals_refined,omitempty"`

	// Contenders is the per-contender breakdown of a portfolio run (empty
	// outside portfolio mode).
	Contenders []Contender `json:"contenders,omitempty"`
	// Decomposed reports that the decompose backend factored the
	// specification and the result was recombined from per-component runs;
	// Components carries the per-component breakdown.  An indivisible
	// specification that fell through to the inner engine leaves both empty
	// (see Result.Decomposition for the informational record).
	Decomposed bool `json:"decomposed,omitempty"`
	// Components is the per-component breakdown of a decomposed run.
	Components []ComponentStat `json:"components,omitempty"`
	// Attempts is the per-attempt breakdown of the Synthesize call: the
	// primary configuration plus every WithFallback step that ran, each
	// with its outcome and duration.  A single-attempt run has one entry;
	// len(Attempts) > 1 means the result was produced by the degradation
	// ladder (see Result.Degradation).
	Attempts []Attempt `json:"attempts,omitempty"`
	// Cached reports that the result was served from the WithCache cache
	// instead of a synthesis run; the timing fields then describe the
	// original (cold) run that populated the cache.
	Cached bool `json:"cached,omitempty"`

	// CSCSignalsInserted and CSCIterations record the WithResolveCSC repair
	// that produced the result: how many internal state signals were inserted
	// and in how many resolution rounds (both zero when the specification
	// satisfied CSC as given).
	CSCSignalsInserted int `json:"csc_signals_inserted,omitempty"`
	CSCIterations      int `json:"csc_iterations,omitempty"`
	// CSCCandidatesFailed counts resolver candidates whose validation
	// state-graph rebuild failed (the rewrite broke the net); a high count
	// explains an exhausted search.
	CSCCandidatesFailed int `json:"csc_candidates_failed,omitempty"`
	// CSCStatesReused / CSCStatesExpanded record the resolver's incremental
	// revalidation: parent states patched into each candidate graph without
	// re-exploration versus delta states actually explored.
	CSCStatesReused   int `json:"csc_states_reused,omitempty"`
	CSCStatesExpanded int `json:"csc_states_expanded,omitempty"`
	// CSCFullRebuilds counts candidate validations that fell back to a full
	// state-graph rebuild.
	CSCFullRebuilds int `json:"csc_full_rebuilds,omitempty"`

	// Workers is the WithWorkers parallelism the producing run was configured
	// with; PEParallel reports that the unfolding engine's possible-extension
	// loop actually ran sharded across the worker pool.  The output is
	// byte-identical either way (and the cache key excludes the worker
	// count), so cached results may report the original run's values.
	Workers    int  `json:"workers,omitempty"`
	PEParallel bool `json:"pe_parallel,omitempty"`
}

// String summarises the stats in the engine's natural vocabulary, covering
// every column of the paper's Table 1 (conditions and the refinement
// counters included for the unfolding flow).
func (s *Stats) String() string {
	var sb strings.Builder
	switch s.Engine {
	case Explicit, Symbolic:
		fmt.Fprintf(&sb, "engine=%s states=%d build=%v covers=%v minimize=%v total=%v",
			s.Engine, s.States, s.UnfTime.Round(time.Microsecond), s.SynTime.Round(time.Microsecond),
			s.EspTime.Round(time.Microsecond), s.Total.Round(time.Microsecond))
	default:
		fmt.Fprintf(&sb, "unf=%v syn=%v esp=%v total=%v events=%d conditions=%d cutoffs=%d refined-terms=%d refined-signals=%d",
			s.UnfTime.Round(time.Microsecond), s.SynTime.Round(time.Microsecond),
			s.EspTime.Round(time.Microsecond), s.Total.Round(time.Microsecond),
			s.Events, s.Conditions, s.Cutoffs, s.TermsRefined, s.SignalsRefined)
	}
	if s.Backend != "" && s.Backend != s.Engine.String() {
		fmt.Fprintf(&sb, " backend=%s", s.Backend)
	}
	if len(s.Contenders) > 0 {
		sb.WriteString(" portfolio=[")
		for i, c := range s.Contenders {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(c.String())
		}
		sb.WriteByte(']')
	}
	if s.Decomposed {
		fmt.Fprintf(&sb, " decomposed=%d[", len(s.Components))
		for i, c := range s.Components {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(c.String())
		}
		sb.WriteByte(']')
	}
	if len(s.Attempts) > 1 {
		sb.WriteString(" attempts=[")
		for i, a := range s.Attempts {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(a.String())
		}
		sb.WriteByte(']')
	}
	if s.CSCSignalsInserted > 0 {
		fmt.Fprintf(&sb, " csc-inserted=%d csc-iterations=%d", s.CSCSignalsInserted, s.CSCIterations)
	}
	if s.CSCCandidatesFailed > 0 {
		fmt.Fprintf(&sb, " csc-candidates-failed=%d", s.CSCCandidatesFailed)
	}
	if s.CSCStatesReused > 0 || s.CSCFullRebuilds > 0 {
		fmt.Fprintf(&sb, " csc-states-reused=%d csc-states-expanded=%d csc-full-rebuilds=%d",
			s.CSCStatesReused, s.CSCStatesExpanded, s.CSCFullRebuilds)
	}
	if s.Workers > 1 {
		fmt.Fprintf(&sb, " workers=%d pe-parallel=%t", s.Workers, s.PEParallel)
	}
	if s.Cached {
		sb.WriteString(" cached=true")
	}
	return sb.String()
}

// Result is the outcome of one successful synthesis run.
type Result struct {
	// Spec is the synthesised specification.  When the WithResolveCSC
	// resolver repaired the input, this is the repaired specification (the
	// one the implementation realises and verifies against); the inserted
	// internal signals are visible in its signal list and Text.
	Spec *Spec
	// Impl is the gate-level implementation; see punt/gates for the model,
	// including per-signal covers.
	Impl *gates.Implementation
	// Stats is the Table-1-style timing and size breakdown.
	Stats Stats
	// Resolution, when non-nil, is the KindResolved informational diagnostic
	// describing the WithResolveCSC repair: the inserted signals in Signal
	// and one rendered insertion per Trace entry.  It is not an error — the
	// synthesis succeeded — merely the structured record of what was changed.
	Resolution *Diagnostic
	// Degradation, when non-nil, is the KindDegraded informational
	// diagnostic recording that the result came from a WithFallback step
	// after the primary configuration exhausted its resources: the winning
	// step's name in Signal, one rendered Attempt per Trace entry.  Like
	// Resolution it is never an error — the synthesis succeeded, merely
	// under a cheaper configuration than asked for.
	Degradation *Diagnostic
	// Decomposition, when non-nil, is the KindIndivisible informational
	// diagnostic recording that the decompose backend found no way to factor
	// the specification and delegated to its inner engine (named in Signal)
	// unchanged.  A factored run leaves it nil and reports through
	// Stats.Decomposed / Stats.Components instead.  Never an error.
	Decomposition *Diagnostic
}

// Resolved reports whether the result was produced through the WithResolveCSC
// repair of a CSC-conflicted specification.
func (r *Result) Resolved() bool { return r.Resolution != nil }

// Degraded reports whether the result was produced by a WithFallback
// degradation step instead of the primary configuration.
func (r *Result) Degraded() bool { return r.Degradation != nil }

// Decomposed reports whether the result was recombined from per-component
// runs of the decompose backend.
func (r *Result) Decomposed() bool { return r.Stats.Decomposed }

// Eqn renders the implementation as boolean equations.
func (r *Result) Eqn() string { return r.Impl.Eqn() }

// Verilog renders the implementation as a behavioural Verilog module.
func (r *Result) Verilog() string { return r.Impl.Verilog() }

// Literals is the total literal count of the implementation.
func (r *Result) Literals() int { return r.Impl.Literals() }

// Gate returns the gate implementing the named signal.
func (r *Result) Gate(signal string) (gates.Gate, bool) { return r.Impl.Gate(signal) }

// Synthesizer is the configured synthesis pipeline.  The zero-cost New
// constructor applies functional options; a Synthesizer is immutable and safe
// for concurrent use.
type Synthesizer struct {
	cfg config
}

// New returns a Synthesizer with the given options applied.
func New(opts ...Option) *Synthesizer {
	s := &Synthesizer{}
	for _, o := range opts {
		o(&s.cfg)
	}
	return s
}

// backendConfig projects the Synthesizer's options onto the engine-agnostic
// configuration handed to backends.
func (s *Synthesizer) backendConfig() BackendConfig {
	return BackendConfig{
		Mode:      s.cfg.mode,
		Arch:      s.cfg.arch,
		MaxEvents: s.cfg.maxEvents,
		MaxStates: s.cfg.maxStates,
		MaxNodes:  s.cfg.maxNodes,
		Workers:   s.cfg.workers,
		Inner:     s.cfg.inner,
		Progress:  s.cfg.progress,
	}
}

// defaultContenders is the portfolio raced by plain WithEngine(Portfolio):
// the paper's three-way engine comparison.
var defaultContenders = []string{Unfolding.String(), Explicit.String(), Symbolic.String()}

// resolveBackends maps the configured engine selection onto registered
// backends: a single backend for the direct engines, a contender list for the
// portfolio scheduler.
func (s *Synthesizer) resolveBackends() (single Backend, contenders []Backend, err error) {
	if name := s.cfg.backend; name != "" {
		b, err := lookupBackend(name)
		return b, nil, err
	}
	if s.cfg.engine != Portfolio {
		b, err := lookupBackend(s.cfg.engine.String())
		return b, nil, err
	}
	names := s.cfg.portfolio
	if len(names) == 0 {
		names = defaultContenders
	}
	contenders = make([]Backend, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if name == "portfolio" {
			return nil, nil, fmt.Errorf("punt: a portfolio cannot race itself")
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("punt: duplicate portfolio contender %q", name)
		}
		seen[name] = true
		b, err := lookupBackend(name)
		if err != nil {
			return nil, nil, err
		}
		contenders = append(contenders, b)
	}
	return nil, contenders, nil
}

// Synthesize derives a speed-independent implementation of spec with the
// configured engine: it consults the WithCache cache, then walks the attempt
// ladder — the primary configuration followed by every WithFallback step —
// dispatching each attempt to the single backend or the portfolio scheduler
// under its own WithDeadline/WithMemoryBudget watchdog.  It honours ctx:
// cancellation aborts the segment/state construction loops promptly and the
// error (wrapped in a *Diagnostic) matches context.Canceled /
// context.DeadlineExceeded.  Every attempt is recorded in Stats.Attempts on
// success and Diagnostic.Attempts on failure; a backend panic surfaces as a
// KindPanic diagnostic on every path, never a crash.
func (s *Synthesizer) Synthesize(ctx context.Context, spec *Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := faultinject.Check(ctx, faultinject.OpFacadeSynthesize); err != nil {
		return nil, diagnose("synthesize", spec.Name(), err)
	}
	var key string
	useCache := s.cfg.cache != nil
	if useCache {
		key = s.CacheKey(spec)
		if res, ok := s.Cached(ctx, spec); ok {
			return res, nil
		}
	}

	steps := s.attemptConfigs()
	attempts := make([]Attempt, 0, len(steps))
	var res *Result
	var err error
	for _, ac := range steps {
		start := time.Now()
		res, err = synthesizeAttempt(ctx, ac.cfg, spec)
		outcome := "ok"
		if err != nil {
			outcome = outcomeLabel(err)
		}
		attempts = append(attempts, Attempt{
			Backend: ac.cfg.selection(),
			Step:    ac.step,
			Outcome: outcome,
			Elapsed: time.Since(start),
		})
		// Only resource exhaustion falls through to the next rung: errors the
		// ladder cannot fix (CSC, safeness, the caller's own cancellation)
		// fail immediately with the primary attempt's diagnostic.
		if err == nil || !retryable(err) || ctx.Err() != nil {
			break
		}
	}
	if err != nil {
		var d *Diagnostic
		if errors.As(err, &d) {
			d.Attempts = attempts
		}
		return nil, err
	}
	res.Stats.Attempts = attempts
	if n := len(attempts); n > 1 {
		traces := make([]string, n)
		for i, a := range attempts {
			traces[i] = a.String()
		}
		res.Degradation = &Diagnostic{
			Op:     "synthesize",
			Spec:   spec.Name(),
			Kind:   KindDegraded,
			Signal: attempts[n-1].Step,
			Trace:  traces,
		}
	}
	// Only primary-configuration results enter the cache — a degraded result
	// must never be served to a caller whose configuration could afford the
	// real one — and never a result produced under an already-expired
	// context, whose work may be truncated.
	if useCache && !res.Degraded() && ctx.Err() == nil &&
		faultinject.Check(ctx, faultinject.OpCachePut) == nil {
		cachePut(ctx, s.cfg.cache, key, res)
	}
	return res, nil
}

// CacheKey returns the content-addressed cache key Synthesize would use for
// spec under this Synthesizer's configuration: the specification hash crossed
// with every configuration field that can change the result.  It is the key
// the puntd daemon reports and the one external cache tooling should use.
func (s *Synthesizer) CacheKey(spec *Spec) string { return s.cacheKey(spec) }

// Cached reports whether a usable result for spec is already present in the
// configured cache, returning it adapted to the caller (Stats.Cached set)
// without running any synthesis.  It returns false when no cache is
// configured.  The puntd server uses this to answer warm hits before
// admission control, so repeat requests are never queued behind cold work.
//
// Like Synthesize's own cache path, a faulted cache lookup degrades to a
// miss, and so does a hit that fails validation: the cache is an
// accelerator, never a point of failure.
func (s *Synthesizer) Cached(ctx context.Context, spec *Spec) (*Result, bool) {
	if s.cfg.cache == nil {
		return nil, false
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if faultinject.Check(ctx, faultinject.OpCacheGet) != nil {
		return nil, false
	}
	res, ok := cacheGet(ctx, s.cfg.cache, s.cacheKey(spec))
	if !ok || !usableCacheHit(res) {
		return nil, false
	}
	return cachedResult(res, spec), true
}

// usableCacheHit validates a cache hit before it is served: a corrupted or
// truncated entry (however it got there — a buggy Cache implementation, a
// faulted store) is treated as a miss, never returned to a caller.
func usableCacheHit(res *Result) bool {
	return res != nil && res.Impl != nil && res.Spec != nil
}

// outcomeLabel compresses an attempt's failure for the Attempts record.
func outcomeLabel(err error) string {
	var d *Diagnostic
	if errors.As(err, &d) {
		return d.Kind.String()
	}
	return "failed"
}

// attemptConfig is one rung of the attempt ladder: the step name (empty for
// the primary configuration) and the fully derived config.
type attemptConfig struct {
	step string
	cfg  config
}

// attemptConfigs derives the attempt ladder from the options: the primary
// configuration first, then one config per WithFallback step with the step's
// options applied on top of the base.
func (s *Synthesizer) attemptConfigs() []attemptConfig {
	out := make([]attemptConfig, 0, 1+len(s.cfg.fallback))
	out = append(out, attemptConfig{cfg: s.cfg})
	for _, st := range s.cfg.fallback {
		c := s.cfg
		// Options mutate slice fields in place (WithPortfolio reuses the
		// backing array): give the derived config its own copies before
		// applying the step, and strip nested ladders either way.
		c.portfolio = append([]string(nil), c.portfolio...)
		c.fallback = nil
		for _, o := range st.Options {
			o(&c)
		}
		c.fallback = nil
		out = append(out, attemptConfig{step: st.Name, cfg: c})
	}
	return out
}

// synthesizeAttempt runs one configuration attempt end to end: backend
// resolution, budget watchdog, dispatch and CSC resolution.  Panics anywhere
// in the attempt — a backend, the resolver, the verifier — are recovered
// into KindPanic diagnostics here, so every entry point (plain Synthesize,
// Batch, the portfolio) degrades to a structured error instead of crashing.
func synthesizeAttempt(ctx context.Context, cfg config, spec *Spec) (res *Result, err error) {
	att := &Synthesizer{cfg: cfg}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, diagnose("synthesize", spec.Name(),
				&PanicError{Backend: cfg.selection(), Value: p, Stack: debug.Stack()})
		}
	}()
	single, contenders, err := att.resolveBackends()
	if err != nil {
		return nil, diagnose("synthesize", spec.Name(), err)
	}
	bcfg := att.backendConfig()
	actx, release := startWatchdog(ctx, cfg.deadline, cfg.memBudget, &bcfg)
	defer release()
	res, err = att.dispatch(actx, single, contenders, spec, bcfg)
	if err != nil && cfg.resolveCSC > 0 && errors.Is(err, ErrCSC) {
		res, err = att.resolveAndRetry(actx, single, contenders, spec, bcfg)
	}
	// The watchdog tripped: even a result delivered after the trip is the
	// product of an over-budget attempt — possibly truncated work that must
	// not escape to the caller or the cache.
	if be := budgetCause(actx); be != nil {
		return nil, diagnose("synthesize", spec.Name(), be)
	}
	return res, err
}

// dispatch runs the resolved backend selection: the single backend, or the
// portfolio scheduler over the contenders.
func (s *Synthesizer) dispatch(ctx context.Context, single Backend, contenders []Backend, spec *Spec, bcfg BackendConfig) (*Result, error) {
	if single != nil {
		return runBackend(ctx, single, spec, bcfg)
	}
	return runPortfolio(ctx, contenders, spec, bcfg, s.cfg.workers)
}

// resolveAndRetry is the WithResolveCSC path: the backend rejected spec with a
// CSC conflict, so the resolver inserts internal state signals until Complete
// State Coding holds, the repaired specification is re-dispatched to the same
// backend selection, and the resulting circuit is proven conformant,
// hazard-free and live by the closed-loop verifier against the post-insertion
// specification.  Any failure along the way — unresolvable conflicts, the
// retry, the verification — fails the Synthesize call as a *Diagnostic.
func (s *Synthesizer) resolveAndRetry(ctx context.Context, single Backend, contenders []Backend, spec *Spec, bcfg BackendConfig) (*Result, error) {
	if p := s.cfg.progress; p != nil {
		p(Progress{Engine: "resolve", Stage: "resolve"})
	}
	rg, rrep, err := resolve.Resolve(ctx, spec.g, resolve.Options{
		MaxSignals: s.cfg.resolveCSC,
		MaxStates:  s.cfg.maxStates,
		Workers:    s.cfg.workers,
	})
	if err != nil {
		return nil, diagnose("resolve", spec.Name(), err)
	}
	resolved, err := wrapSpec(rg)
	if err != nil {
		return nil, err
	}
	res, err := s.dispatch(ctx, single, contenders, resolved, bcfg)
	if err != nil {
		return nil, err
	}
	// The repair is only done when the repaired circuit provably conforms to
	// the post-insertion specification: close the loop before reporting
	// success.
	if _, verr := verify.Verify(ctx, rg, res.Impl, verify.Options{MaxStates: s.cfg.maxStates}); verr != nil {
		return nil, diagnose("resolve", spec.Name(), verr)
	}
	res.Stats.CSCSignalsInserted = len(rrep.Inserted)
	res.Stats.CSCIterations = rrep.Iterations
	res.Stats.CSCCandidatesFailed = rrep.CandidatesFailed
	res.Stats.CSCStatesReused = rrep.StatesReused
	res.Stats.CSCStatesExpanded = rrep.StatesExpanded
	res.Stats.CSCFullRebuilds = rrep.FullRebuilds
	traces := make([]string, len(rrep.Inserted))
	for i, in := range rrep.Inserted {
		traces[i] = in.String()
	}
	res.Resolution = &Diagnostic{
		Op:     "resolve",
		Spec:   spec.Name(),
		Kind:   KindResolved,
		Signal: strings.Join(rrep.Signals(), ","),
		Trace:  traces,
	}
	return res, nil
}
