package punt

import (
	"context"
	"fmt"
	"time"

	"punt/gates"
	"punt/internal/baseline"
	"punt/internal/core"
)

// Mode selects how the unfolding-based flow derives covers.
type Mode = core.Mode

// Synthesis modes.
const (
	// Approximate derives covers from concurrency information local to the
	// segment and refines them only where they interfere (the default).
	Approximate Mode = core.Approximate
	// Exact enumerates the states encapsulated by every slice.
	Exact Mode = core.Exact
)

// Engine selects the synthesis engine.
type Engine int

// The three synthesis engines.
const (
	// Unfolding is the paper's PUNT flow: covers are derived from the
	// STG-unfolding segment without building the state graph (the default).
	Unfolding Engine = iota
	// Explicit is the "SIS-like" baseline: explicit state-graph enumeration.
	Explicit
	// Symbolic is the "Petrify-like" baseline: BDD-based reachability.
	Symbolic
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Explicit:
		return "explicit"
	case Symbolic:
		return "symbolic"
	default:
		return "unfolding"
	}
}

// Progress is a coarse progress notification delivered to the WithProgress
// callback during synthesis.
type Progress struct {
	// Stage depends on the engine: the unfolding flow reports "unfold" while
	// the segment is under construction, the baselines report "build" once
	// the state space exists; every engine then reports "covers" when the
	// covers of a signal are about to be derived.
	Stage string
	// Signal names the signal being processed during the "covers" stage.
	Signal string
	// Events is the number of segment events built so far (final size during
	// "covers"; unfolding engine only).
	Events int
	// States is the size of the state space (state-graph engines only).
	States int
}

// config collects the functional options of a Synthesizer.
type config struct {
	mode      Mode
	arch      gates.Architecture
	engine    Engine
	maxEvents int
	maxStates int
	maxNodes  int
	workers   int
	progress  func(Progress)
}

// Option configures a Synthesizer (and the package-level Batch, Unfold and
// BuildStateGraph helpers).
type Option func(*config)

// WithMode selects exact or approximate cover derivation for the unfolding
// engine.
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithArch selects the implementation architecture (default
// gates.ComplexGate).
func WithArch(a gates.Architecture) Option { return func(c *config) { c.arch = a } }

// WithMaxEvents bounds the size of the unfolding segment; exceeding it fails
// with ErrEventLimit (0 = the engine default of 1,000,000).
func WithMaxEvents(n int) Option { return func(c *config) { c.maxEvents = n } }

// WithMaxStates bounds the explicit state-graph engines; exceeding it fails
// with ErrLimit (0 = unlimited).
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = n } }

// WithMaxNodes bounds the symbolic engine's BDD size; exceeding it fails with
// ErrLimit (0 = unlimited).
func WithMaxNodes(n int) Option { return func(c *config) { c.maxNodes = n } }

// WithBaseline selects a state-graph baseline engine (Explicit or Symbolic)
// instead of the default unfolding flow, so the baselines are driven through
// exactly the same API.  WithBaseline(Unfolding) restores the default.
func WithBaseline(e Engine) Option { return func(c *config) { c.engine = e } }

// WithProgress installs a callback receiving coarse progress notifications.
// The callback runs on the synthesizing goroutine and must be cheap; under
// Batch it is invoked concurrently from several workers.
func WithProgress(fn func(Progress)) Option { return func(c *config) { c.progress = fn } }

// WithWorkers bounds the parallelism of Batch (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// Stats is the per-run timing and size breakdown, named after the columns of
// the paper's Table 1.  The unfolding engine fills the segment fields; the
// state-graph engines fill States.  For the baselines UnfTime is the
// state-space construction time, SynTime the cover extraction and EspTime the
// two-level minimisation, so the phases stay comparable across engines.
type Stats struct {
	Engine Engine

	// UnfTime is the segment (or state-space) construction time ("UnfTim").
	UnfTime time.Duration
	// SynTime is the cover derivation time ("SynTim").
	SynTime time.Duration
	// EspTime is the two-level minimisation time ("EspTim").
	EspTime time.Duration
	// Total is the complete wall-clock synthesis time ("TotTim").
	Total time.Duration

	// Segment size (unfolding engine).
	Events     int
	Conditions int
	Cutoffs    int
	// States is the number of reachable states (state-graph engines).
	States int

	// Refinement counters (unfolding engine, approximate mode).
	TermsRefined   int
	SignalsRefined int
}

// String summarises the stats in the engine's natural vocabulary.
func (s *Stats) String() string {
	switch s.Engine {
	case Explicit, Symbolic:
		return fmt.Sprintf("engine=%s states=%d build=%v covers=%v minimize=%v total=%v",
			s.Engine, s.States, s.UnfTime.Round(time.Microsecond), s.SynTime.Round(time.Microsecond),
			s.EspTime.Round(time.Microsecond), s.Total.Round(time.Microsecond))
	default:
		return fmt.Sprintf("unf=%v syn=%v esp=%v total=%v events=%d cutoffs=%d refined-terms=%d",
			s.UnfTime.Round(time.Microsecond), s.SynTime.Round(time.Microsecond),
			s.EspTime.Round(time.Microsecond), s.Total.Round(time.Microsecond),
			s.Events, s.Cutoffs, s.TermsRefined)
	}
}

// Result is the outcome of one successful synthesis run.
type Result struct {
	// Spec is the synthesised specification.
	Spec *Spec
	// Impl is the gate-level implementation; see punt/gates for the model,
	// including per-signal covers.
	Impl *gates.Implementation
	// Stats is the Table-1-style timing and size breakdown.
	Stats Stats
}

// Eqn renders the implementation as boolean equations.
func (r *Result) Eqn() string { return r.Impl.Eqn() }

// Verilog renders the implementation as a behavioural Verilog module.
func (r *Result) Verilog() string { return r.Impl.Verilog() }

// Literals is the total literal count of the implementation.
func (r *Result) Literals() int { return r.Impl.Literals() }

// Gate returns the gate implementing the named signal.
func (r *Result) Gate(signal string) (gates.Gate, bool) { return r.Impl.Gate(signal) }

// Synthesizer is the configured synthesis pipeline.  The zero-cost New
// constructor applies functional options; a Synthesizer is immutable and safe
// for concurrent use.
type Synthesizer struct {
	cfg config
}

// New returns a Synthesizer with the given options applied.
func New(opts ...Option) *Synthesizer {
	s := &Synthesizer{}
	for _, o := range opts {
		o(&s.cfg)
	}
	return s
}

// Synthesize derives a speed-independent implementation of spec with the
// configured engine.  It honours ctx: cancellation aborts the segment/state
// construction loops promptly and the error (wrapped in a *Diagnostic)
// matches context.Canceled / context.DeadlineExceeded.
func (s *Synthesizer) Synthesize(ctx context.Context, spec *Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Spec: spec}
	res.Stats.Engine = s.cfg.engine
	switch s.cfg.engine {
	case Explicit:
		eng := &baseline.ExplicitSynthesizer{
			Arch:      s.cfg.arch,
			MaxStates: s.cfg.maxStates,
			Progress:  baselineProgress(s.cfg.progress),
		}
		im, st, err := eng.Synthesize(ctx, spec.g)
		if err != nil {
			return nil, diagnose("synthesize", spec.Name(), err)
		}
		res.Impl = im
		fillBaselineStats(&res.Stats, st)
	case Symbolic:
		eng := &baseline.SymbolicSynthesizer{
			Arch:     s.cfg.arch,
			MaxNodes: s.cfg.maxNodes,
			Progress: baselineProgress(s.cfg.progress),
		}
		im, st, err := eng.Synthesize(ctx, spec.g)
		if err != nil {
			return nil, diagnose("synthesize", spec.Name(), err)
		}
		res.Impl = im
		fillBaselineStats(&res.Stats, st)
	default:
		copts := core.Options{Mode: s.cfg.mode, Arch: s.cfg.arch, MaxEvents: s.cfg.maxEvents}
		if p := s.cfg.progress; p != nil {
			copts.Progress = func(stage, signal string, events int) {
				p(Progress{Stage: stage, Signal: signal, Events: events})
			}
		}
		im, st, err := core.New(copts).Synthesize(ctx, spec.g)
		if err != nil {
			return nil, diagnose("synthesize", spec.Name(), err)
		}
		res.Impl = im
		res.Stats.UnfTime = st.UnfTime
		res.Stats.SynTime = st.SynTime
		res.Stats.EspTime = st.EspTime
		res.Stats.Total = st.Total
		res.Stats.Events = st.Events
		res.Stats.Conditions = st.Conditions
		res.Stats.Cutoffs = st.Cutoffs
		res.Stats.TermsRefined = st.TermsRefined
		res.Stats.SignalsRefined = st.SignalsRefined
	}
	return res, nil
}

// baselineProgress adapts the public progress callback to the baseline
// engines' hook.
func baselineProgress(p func(Progress)) baseline.ProgressFunc {
	if p == nil {
		return nil
	}
	return func(stage, signal string, states int) {
		p(Progress{Stage: stage, Signal: signal, States: states})
	}
}

func fillBaselineStats(dst *Stats, st *baseline.Stats) {
	dst.UnfTime = st.BuildTime
	dst.SynTime = st.CoverTime
	dst.EspTime = st.MinimizeTime
	dst.Total = st.Total
	dst.States = st.States
}
